(* Unit and property tests for Relalg.Value. *)

open Relalg

let value_gen =
  QCheck.Gen.(
    oneof
      [
        return Value.Null;
        map (fun b -> Value.Bool b) bool;
        map (fun i -> Value.Int i) (int_range (-1000) 1000);
        map (fun f -> Value.Float f) (float_range (-1000.) 1000.);
        map (fun s -> Value.Str s) (string_size ~gen:printable (int_range 0 8));
      ])

let value_arb = QCheck.make ~print:Value.to_string value_gen

let test_ordering_basics () =
  Alcotest.(check int) "null smallest" (-1) (compare (Value.compare Value.Null (Value.Int 0)) 0);
  Alcotest.(check bool) "int/float mixed eq" true (Value.equal (Value.Int 3) (Value.Float 3.));
  Alcotest.(check bool) "int < float" true (Value.compare (Value.Int 3) (Value.Float 3.5) < 0);
  Alcotest.(check bool) "str vs int" true (Value.compare (Value.Str "a") (Value.Int 9) > 0)

let test_arithmetic () =
  Alcotest.(check bool) "int add" true (Value.equal (Value.add (Value.Int 2) (Value.Int 3)) (Value.Int 5));
  Alcotest.(check bool) "mixed mul" true
    (Value.equal (Value.mul (Value.Int 2) (Value.Float 1.5)) (Value.Float 3.));
  Alcotest.(check bool) "null absorbs" true (Value.is_null (Value.add Value.Null (Value.Int 1)));
  Alcotest.(check bool) "div by zero is null" true
    (Value.is_null (Value.div (Value.Int 1) (Value.Int 0)));
  Alcotest.check_raises "bool arithmetic rejected"
    (Invalid_argument "Value.add: non-numeric operand") (fun () ->
      ignore (Value.add (Value.Bool true) (Value.Int 1)))

let prop_compare_reflexive =
  Helpers.qcheck_case "compare reflexive" value_arb (fun v -> Value.compare v v = 0)

let prop_compare_antisymmetric =
  Helpers.qcheck_case "compare antisymmetric"
    (QCheck.pair value_arb value_arb)
    (fun (a, b) -> Value.compare a b = -Value.compare b a)

let prop_compare_transitive =
  Helpers.qcheck_case "compare transitive"
    (QCheck.triple value_arb value_arb value_arb)
    (fun (a, b, c) ->
      let sorted = List.sort Value.compare [ a; b; c ] in
      match sorted with
      | [ x; y; z ] -> Value.compare x y <= 0 && Value.compare y z <= 0 && Value.compare x z <= 0
      | _ -> false)

let prop_hash_consistent =
  Helpers.qcheck_case "equal values hash equal"
    (QCheck.pair value_arb value_arb)
    (fun (a, b) -> (not (Value.equal a b)) || Value.hash a = Value.hash b)

let prop_add_commutative =
  let num_gen =
    QCheck.Gen.(
      oneof
        [ map (fun i -> Value.Int i) (int_range (-1000) 1000);
          map (fun f -> Value.Float f) (float_range (-1000.) 1000.) ])
  in
  let num_arb = QCheck.make ~print:Value.to_string num_gen in
  Helpers.qcheck_case "numeric add commutative"
    (QCheck.pair num_arb num_arb)
    (fun (a, b) -> Value.equal (Value.add a b) (Value.add b a))

let suite =
  [
    Alcotest.test_case "ordering basics" `Quick test_ordering_basics;
    Alcotest.test_case "arithmetic" `Quick test_arithmetic;
    prop_compare_reflexive;
    prop_compare_antisymmetric;
    prop_compare_transitive;
    prop_hash_consistent;
    prop_add_commutative;
  ]
