(* Integration tests: optimize a logical query, execute the winning
   plan on the Volcano iterator engine, and compare against the naive
   evaluation oracle. This exercises the optimizer, the memo, the rule
   set, property enforcement, and every execution operator at once. *)

open Relalg
open Expr

let catalog = Helpers.small_catalog ()

let join_rs = Logical.join (col "r.a" =% col "s.a") (Logical.get "r") (Logical.get "s")

let join_rst =
  Logical.join (col "s.c" =% col "t.c") join_rs (Logical.get "t")

let test_single_scan () =
  ignore (Helpers.check_optimized_matches_naive catalog (Logical.get "r"))

let test_select () =
  ignore
    (Helpers.check_optimized_matches_naive catalog
       (Logical.select (col "r.a" >% int 5) (Logical.get "r")))

let test_two_way_join () = ignore (Helpers.check_optimized_matches_naive catalog join_rs)

let test_three_way_join () =
  ignore (Helpers.check_optimized_matches_naive catalog join_rst)

let test_join_with_selections () =
  let q =
    Logical.select
      (col "r.b" <=% int 3 &&% (col "t.c" >% int 2))
      join_rst
  in
  ignore (Helpers.check_optimized_matches_naive catalog q)

let test_ordered_output () =
  let required = Phys_prop.sorted (Sort_order.asc [ "r.a" ]) in
  let plan = Helpers.check_optimized_matches_naive ~required catalog join_rs in
  let actual, schema, _ = Executor.run catalog (Relmodel.Optimizer.to_physical plan) in
  Alcotest.(check bool)
    "output is sorted by r.a" true
    (Sort_order.is_sorted schema (Sort_order.asc [ "r.a" ]) actual)

let test_ordered_output_desc_via_sort () =
  let required = Phys_prop.sorted [ ("r.a", Sort_order.Desc) ] in
  let plan = Helpers.check_optimized_matches_naive ~required catalog join_rs in
  let actual, schema, _ = Executor.run catalog (Relmodel.Optimizer.to_physical plan) in
  Alcotest.(check bool)
    "output is sorted by r.a desc" true
    (Sort_order.is_sorted schema [ ("r.a", Sort_order.Desc) ] actual)

let test_distinct_output () =
  let q = Logical.project [ "r.a" ] (Logical.get "r") in
  let required = Phys_prop.with_distinct Phys_prop.any in
  let plan = Helpers.optimize_plan ~required catalog q in
  let actual, _, _ = Executor.run catalog (Relmodel.Optimizer.to_physical plan) in
  let expected, _ = Executor.naive catalog q in
  let distinct_expected = Array.of_seq (Seq.of_dispenser (
    let seen = Hashtbl.create 16 in
    let pos = ref 0 in
    fun () ->
      let rec go () =
        if !pos >= Array.length expected then None
        else begin
          let t = expected.(!pos) in
          incr pos;
          let key = Array.to_list t in
          if Hashtbl.mem seen key then go ()
          else begin
            Hashtbl.add seen key ();
            Some t
          end
        end
      in
      go ()))
  in
  Helpers.check_same_bag "distinct projection" distinct_expected actual

let test_distinct_and_ordered () =
  let q = Logical.project [ "r.a" ] (Logical.get "r") in
  let required = Phys_prop.with_distinct (Phys_prop.sorted (Sort_order.asc [ "r.a" ])) in
  let plan = Helpers.optimize_plan ~required catalog q in
  let actual, schema, _ = Executor.run catalog (Relmodel.Optimizer.to_physical plan) in
  Alcotest.(check bool)
    "sorted" true
    (Sort_order.is_sorted schema (Sort_order.asc [ "r.a" ]) actual);
  let keys = Array.map (fun t -> Value.to_string t.(0)) actual in
  let distinct = Array.of_list (List.sort_uniq compare (Array.to_list keys)) in
  Alcotest.(check int) "no duplicates" (Array.length distinct) (Array.length actual)

let test_union () =
  let q =
    Logical.union
      (Logical.project [ "r.id" ] (Logical.get "r"))
      (Logical.project [ "s.id" ] (Logical.get "s"))
  in
  ignore (Helpers.check_optimized_matches_naive catalog q)

let test_intersect () =
  let q =
    Logical.intersect
      (Logical.project [ "r.a" ] (Logical.get "r"))
      (Logical.project [ "s.a" ] (Logical.get "s"))
  in
  ignore (Helpers.check_optimized_matches_naive catalog q)

let test_difference () =
  let q =
    Logical.difference
      (Logical.project [ "r.a" ] (Logical.get "r"))
      (Logical.project [ "s.a" ] (Logical.get "s"))
  in
  ignore (Helpers.check_optimized_matches_naive catalog q)

let test_group_by () =
  let q =
    Logical.group_by [ "r.a" ]
      [
        { Logical.func = Logical.Count; column = None; alias = "n" };
        { Logical.func = Logical.Sum; column = Some "r.b"; alias = "total_b" };
      ]
      (Logical.get "r")
  in
  ignore (Helpers.check_optimized_matches_naive catalog q)

let test_group_by_join () =
  let q =
    Logical.group_by [ "r.b" ]
      [ { Logical.func = Logical.Count; column = None; alias = "n" } ]
      join_rs
  in
  ignore (Helpers.check_optimized_matches_naive catalog q)

let test_cost_limit_failure () =
  (* A tiny cost limit must make optimization fail, not return a bogus
     plan ("catch unreasonable queries", §3). *)
  let req =
    { (Relmodel.Optimizer.request catalog) with limit = Some (Cost.make ~io:0. ~cpu:1e-12) }
  in
  let result = Relmodel.Optimizer.optimize req join_rst ~required:Phys_prop.any in
  Alcotest.(check bool) "no plan under absurd limit" true (result.plan = None)

let test_generous_limit_same_plan () =
  let unlimited = Helpers.optimize_plan catalog join_rst in
  let req =
    { (Relmodel.Optimizer.request catalog) with limit = Some (Cost.make ~io:1e6 ~cpu:1e6) }
  in
  let result = Relmodel.Optimizer.optimize req join_rst ~required:Phys_prop.any in
  match result.plan with
  | None -> Alcotest.fail "plan expected under generous limit"
  | Some p ->
    Alcotest.(check (float 1e-9))
      "same optimal cost" (Cost.total unlimited.cost) (Cost.total p.cost)

let suite =
  [
    Alcotest.test_case "single scan" `Quick test_single_scan;
    Alcotest.test_case "selection" `Quick test_select;
    Alcotest.test_case "two-way join" `Quick test_two_way_join;
    Alcotest.test_case "three-way join" `Quick test_three_way_join;
    Alcotest.test_case "join with selections" `Quick test_join_with_selections;
    Alcotest.test_case "ORDER BY via properties" `Quick test_ordered_output;
    Alcotest.test_case "ORDER BY desc" `Quick test_ordered_output_desc_via_sort;
    Alcotest.test_case "DISTINCT via properties" `Quick test_distinct_output;
    Alcotest.test_case "DISTINCT + ORDER BY" `Quick test_distinct_and_ordered;
    Alcotest.test_case "union" `Quick test_union;
    Alcotest.test_case "intersect" `Quick test_intersect;
    Alcotest.test_case "difference" `Quick test_difference;
    Alcotest.test_case "group by" `Quick test_group_by;
    Alcotest.test_case "group by over join" `Quick test_group_by_join;
    Alcotest.test_case "absurd cost limit fails" `Quick test_cost_limit_failure;
    Alcotest.test_case "generous cost limit keeps optimum" `Quick test_generous_limit_same_plan;
  ]

(* Property: for random queries and random physical-property goals, the
   winning plan's promises are kept by its actual execution — output is
   sorted as claimed and duplicate-free when claimed (the paper's
   consistency check, verified against ground truth rather than against
   the property functions). *)
let prop_promises_kept =
  let gen =
    QCheck.Gen.(
      let* n = int_range 2 3
      and* seed = int_range 0 3_000
      and* want_distinct = bool
      and* order_col = oneofl [ "jk1"; "jk2"; "val"; "id" ]
      and* order_rel = int_range 0 3 in
      return (n, seed, want_distinct, order_col, order_rel))
  in
  Helpers.qcheck_case ~count:15 "plan promises hold under execution" (QCheck.make gen)
    (fun (n, seed, want_distinct, order_col, order_rel) ->
      let q = Workload.generate (Workload.spec ~n_relations:n ~seed ()) in
      let column = Printf.sprintf "rel%d.%s" (order_rel mod n) order_col in
      let required =
        let base = Phys_prop.sorted (Sort_order.asc [ column ]) in
        if want_distinct then Phys_prop.with_distinct base else base
      in
      let request =
        { (Relmodel.Optimizer.request q.catalog) with restore_columns = false }
      in
      match (Relmodel.Optimizer.optimize request q.logical ~required).plan with
      | None -> false
      | Some plan ->
        let rows, schema, _ =
          Executor.run q.catalog (Relmodel.Optimizer.to_physical plan)
        in
        let sorted = Sort_order.is_sorted schema (Sort_order.asc [ column ]) rows in
        let distinct_ok =
          (not want_distinct)
          ||
          let seen = Hashtbl.create 64 in
          Array.for_all
            (fun t ->
              let key = Array.to_list t in
              if Hashtbl.mem seen key then false
              else begin
                Hashtbl.add seen key ();
                true
              end)
            rows
        in
        sorted && distinct_ok)

let suite = suite @ [ prop_promises_kept ]
