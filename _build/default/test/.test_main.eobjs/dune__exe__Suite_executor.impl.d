test/suite_executor.ml: Alcotest Array Catalog Executor Expr List Logical Physical Relalg Schema Sort_order Tuple Value
