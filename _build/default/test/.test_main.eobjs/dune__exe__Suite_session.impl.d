test/suite_session.ml: Alcotest Array Cost Executor Expr Helpers List Logical Phys_prop Printf Relalg Relmodel Sort_order Tuple Value
