test/suite_workload.ml: Alcotest Array Catalog Expr List Logical Phys_prop Printf Relalg Relmodel Schema Tuple Workload
