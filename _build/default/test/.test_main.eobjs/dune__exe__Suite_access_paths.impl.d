test/suite_access_paths.ml: Alcotest Catalog Cost Executor Expr Helpers List Logical Phys_prop Physical Printf Relalg Relmodel Schema Sort_order
