test/suite_volcano.ml: Alcotest Format List String Volcano
