test/suite_e2e.ml: Alcotest Array Cost Executor Expr Hashtbl Helpers List Logical Phys_prop Printf QCheck Relalg Relmodel Seq Sort_order Value Workload
