test/suite_memo.ml: Alcotest Cost Expr Helpers List Logical Logical_props Phys_prop Physical QCheck Relalg Relmodel Sort_order Volcano
