test/suite_stats.ml: Alcotest Array Catalog Expr Float Helpers Logical_props Option Printf Relalg Schema Seq Value
