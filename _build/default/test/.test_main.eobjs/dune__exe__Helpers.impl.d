test/helpers.ml: Alcotest Array Catalog Executor List Phys_prop Printf QCheck QCheck_alcotest Relalg Relmodel Tuple Value
