test/suite_sort_order.ml: Alcotest Helpers Phys_prop QCheck Relalg Schema Sort_order Value
