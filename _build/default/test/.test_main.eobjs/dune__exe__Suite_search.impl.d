test/suite_search.ml: Alcotest Catalog Cost Executor Expr Float Helpers List Logical Option Phys_prop Physical QCheck Relalg Relmodel Schema Sort_order Workload
