test/suite_schema.ml: Alcotest Array Relalg Schema Tuple Value
