test/suite_dynplan.ml: Alcotest Catalog Cost Dynplan Executor Expr Float Helpers List Logical Phys_prop Physical Printf QCheck Relalg Relmodel String Value
