test/suite_exodus.ml: Alcotest Array Cost Executor Exodus Expr Helpers List Logical Option Phys_prop Physical Printf Relalg Relmodel Sort_order Tuple Value Workload
