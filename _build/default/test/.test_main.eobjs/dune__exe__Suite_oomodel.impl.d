test/suite_oomodel.ml: Alcotest List Oomodel Path_set Volcano
