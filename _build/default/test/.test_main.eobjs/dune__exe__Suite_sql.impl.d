test/suite_sql.ml: Alcotest Array Executor Expr Helpers List Logical Phys_prop Relalg Relmodel Sort_order Sqlfront Value
