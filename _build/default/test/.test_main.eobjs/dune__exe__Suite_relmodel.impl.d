test/suite_relmodel.ml: Alcotest Array Catalog Cost Expr Helpers List Logical Logical_props Phys_prop Physical Relalg Relmodel Schema Sort_order
