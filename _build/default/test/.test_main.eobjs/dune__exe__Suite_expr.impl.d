test/suite_expr.ml: Alcotest Expr Format Helpers List QCheck Relalg Schema Tuple Value
