test/suite_parallel.ml: Alcotest Array Catalog Cost Cost_model Executor Expr Float Helpers List Logical Phys_prop Physical Printf QCheck Random Relalg Relmodel Schema Sort_order Value
