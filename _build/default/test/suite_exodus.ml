(* Tests of the EXODUS-style baseline: its plans must be semantically
   correct and match Volcano's optima on small queries where both
   search the full space. *)

open Relalg

let catalog = Helpers.small_catalog ()

let queries =
  let open Expr in
  [
    ("scan", Logical.get "r");
    ("select", Logical.select (col "r.a" >% int 4) (Logical.get "r"));
    ( "join",
      Logical.join (col "r.a" =% col "s.a") (Logical.get "r") (Logical.get "s") );
    ( "join3",
      Logical.join (col "s.c" =% col "t.c")
        (Logical.join (col "r.a" =% col "s.a") (Logical.get "r") (Logical.get "s"))
        (Logical.get "t") );
  ]

let test_plans_execute_correctly () =
  List.iter
    (fun (name, q) ->
      let result = Exodus.optimize ~catalog q ~required:Phys_prop.any in
      match result.plan with
      | None -> Alcotest.fail (name ^ ": no plan")
      | Some plan ->
        let actual, _, _ = Executor.run catalog plan in
        let expected, _ = Executor.naive catalog q in
        (* EXODUS does not restore column order after commutativity;
           compare as bags of sorted-row multisets. *)
        let canon (arr : Tuple.t array) =
          Array.to_list arr
          |> List.map (fun t -> List.sort compare (List.map Value.to_string (Array.to_list t)))
          |> List.sort compare
        in
        Alcotest.(check bool)
          (name ^ ": execution matches naive") true
          (canon actual = canon expected))
    queries

let test_matches_volcano_on_small () =
  List.iter
    (fun (name, q) ->
      let e = Exodus.optimize ~catalog q ~required:Phys_prop.any in
      let v =
        Relmodel.Optimizer.optimize
          { (Relmodel.Optimizer.request catalog) with restore_columns = false }
          q ~required:Phys_prop.any
      in
      match e.plan, v.plan with
      | Some ep, Some vp ->
        let ec = Cost.total (Relmodel.Plan_cost.estimate catalog ep) in
        let vc =
          Cost.total (Relmodel.Plan_cost.estimate catalog (Relmodel.Optimizer.to_physical vp))
        in
        Alcotest.(check bool)
          (Printf.sprintf "%s: volcano (%.4f) <= exodus (%.4f)" name vc ec)
          true (vc <= ec +. 1e-9)
      | _, _ -> Alcotest.fail (name ^ ": missing plan"))
    queries

let test_glue_sort_for_order () =
  let open Expr in
  let q = Logical.join (col "r.a" =% col "s.a") (Logical.get "r") (Logical.get "s") in
  let required = Phys_prop.sorted (Sort_order.asc [ "r.a" ]) in
  let result = Exodus.optimize ~catalog q ~required in
  match result.plan with
  | Some { Physical.alg = Physical.Sort o; _ } ->
    Alcotest.(check bool) "glue sort on the required order" true
      (Sort_order.equal o (Sort_order.asc [ "r.a" ]));
    let actual, schema, _ = Executor.run catalog (Option.get result.plan) in
    Alcotest.(check bool) "executed output is sorted" true
      (Sort_order.is_sorted schema (Sort_order.asc [ "r.a" ]) actual)
  | Some _ -> Alcotest.fail "expected a glue sort at the root"
  | None -> Alcotest.fail "no plan"

let test_node_budget_aborts () =
  let q = Workload.generate (Workload.spec ~n_relations:6 ~seed:3 ()) in
  let result = Exodus.optimize ~catalog:q.catalog ~max_nodes:500 q.logical ~required:Phys_prop.any in
  Alcotest.(check bool) "aborted" true result.aborted;
  Alcotest.(check bool) "still returns its best-so-far plan" true (result.plan <> None)

let test_stats_grow () =
  let q2 = Workload.generate (Workload.spec ~n_relations:2 ~seed:5 ()) in
  let q4 = Workload.generate (Workload.spec ~n_relations:4 ~seed:5 ()) in
  let r2 = Exodus.optimize ~catalog:q2.catalog q2.logical ~required:Phys_prop.any in
  let r4 = Exodus.optimize ~catalog:q4.catalog q4.logical ~required:Phys_prop.any in
  Alcotest.(check bool) "node blow-up with query size" true (r4.stats.nodes > 4 * r2.stats.nodes);
  Alcotest.(check bool) "reanalysis appears on larger queries" true
    (r4.stats.reanalyses >= r2.stats.reanalyses)

let suite =
  [
    Alcotest.test_case "plans execute correctly" `Quick test_plans_execute_correctly;
    Alcotest.test_case "never beats volcano" `Quick test_matches_volcano_on_small;
    Alcotest.test_case "glue sort for ORDER BY" `Quick test_glue_sort_for_order;
    Alcotest.test_case "node budget aborts gracefully" `Quick test_node_budget_aborts;
    Alcotest.test_case "effort grows with size" `Quick test_stats_grow;
  ]
