(* Tests of the relational model specification: property derivation,
   rule semantics (associativity predicate bookkeeping), enforcers,
   deliver functions, and the neutral plan re-coster. *)

open Relalg

let catalog = Helpers.small_catalog ()

let test_derive_get () =
  let p = Relmodel.Derive.expr catalog (Logical.get "r") in
  Alcotest.(check (float 0.)) "card" 60. p.Logical_props.card;
  Alcotest.(check (list string)) "relations" [ "r" ] p.Logical_props.relations;
  Alcotest.(check int) "columns qualified" 3 (Array.length p.Logical_props.schema)

let test_derive_select_reduces () =
  let q = Logical.select Expr.(col "r.a" =% int 3) (Logical.get "r") in
  let p = Relmodel.Derive.expr catalog q in
  let base = Relmodel.Derive.expr catalog (Logical.get "r") in
  Alcotest.(check bool) "smaller" true (p.Logical_props.card < base.Logical_props.card);
  Alcotest.(check bool) "positive" true (p.Logical_props.card > 0.)

let test_derive_join_schema_and_relations () =
  let q = Expr.(Logical.join (col "r.a" =% col "s.a") (Logical.get "r") (Logical.get "s")) in
  let p = Relmodel.Derive.expr catalog q in
  Alcotest.(check int) "schema concat" 6 (Array.length p.Logical_props.schema);
  Alcotest.(check (list string)) "relations union" [ "r"; "s" ] p.Logical_props.relations;
  let cart = Relmodel.Derive.expr catalog (Logical.join Expr.true_ (Logical.get "r") (Logical.get "s")) in
  Alcotest.(check (float 1.)) "cartesian card" (60. *. 40.) cart.Logical_props.card;
  Alcotest.(check bool) "join smaller than cartesian" true
    (p.Logical_props.card < cart.Logical_props.card)

let test_derive_group_by () =
  let q =
    Logical.group_by [ "r.a" ]
      [ { Logical.func = Logical.Count; column = None; alias = "n" } ]
      (Logical.get "r")
  in
  let p = Relmodel.Derive.expr catalog q in
  Alcotest.(check (list string)) "schema" [ "r.a"; "n" ] (Schema.names p.Logical_props.schema);
  Alcotest.(check bool) "about ten groups" true
    (p.Logical_props.card >= 5. && p.Logical_props.card <= 10.)

let test_commuted_join_same_card () =
  (* Commutativity must not change cardinality estimates, or the memo's
     frozen group properties would be ill-defined. *)
  let pred = Expr.(col "r.a" =% col "s.a") in
  let a = Relmodel.Derive.expr catalog (Logical.join pred (Logical.get "r") (Logical.get "s")) in
  let b = Relmodel.Derive.expr catalog (Logical.join pred (Logical.get "s") (Logical.get "r")) in
  Alcotest.(check (float 1e-9)) "same card" a.Logical_props.card b.Logical_props.card

let test_assoc_split () =
  let sa = (Catalog.find catalog "r").Catalog.schema in
  let sb = (Catalog.find catalog "s").Catalog.schema in
  let sc = (Catalog.find catalog "t").Catalog.schema in
  ignore sa;
  let open Expr in
  let p1 = col "s.c" =% col "t.c" &&% (col "r.a" >% int 0) in
  let p2 = col "r.a" =% col "s.a" in
  let top, bottom = Relmodel.Rewrites.assoc_split ~p1 ~p2 ~schema_b:sb ~schema_c:sc in
  (* s.c = t.c refers only to B+C: it must sink; the others rise. *)
  Alcotest.(check bool) "bottom gets the s-t predicate" true
    (List.exists (Expr.equal (col "s.c" =% col "t.c")) (Expr.conjuncts bottom));
  Alcotest.(check int) "one conjunct below" 1 (List.length (Expr.conjuncts bottom));
  Alcotest.(check int) "two conjuncts above" 2 (List.length (Expr.conjuncts top))

let test_links_schemas () =
  let sb = (Catalog.find catalog "s").Catalog.schema in
  let sc = (Catalog.find catalog "t").Catalog.schema in
  let open Expr in
  Alcotest.(check bool) "linking predicate" true
    (Relmodel.Rewrites.links_schemas sb sc (col "s.c" =% col "t.c"));
  Alcotest.(check bool) "one-sided predicate" false
    (Relmodel.Rewrites.links_schemas sb sc (col "s.c" >% int 0))

(* Model-level checks through a first-class instance. *)
module M = (val Relmodel.Rel_model.make ~catalog ())

let test_deliver_functions () =
  let sorted = Phys_prop.sorted (Sort_order.asc [ "r.a" ]) in
  (* Filter is transparent. *)
  Alcotest.(check bool) "filter passes props" true
    (Phys_prop.equal (M.deliver (Physical.Filter Expr.true_) [ sorted ]) sorted);
  (* Sort establishes order and preserves distinctness. *)
  let distinct_in = Phys_prop.with_distinct Phys_prop.any in
  let out = M.deliver (Physical.Sort (Sort_order.asc [ "r.a" ])) [ distinct_in ] in
  Alcotest.(check bool) "sort keeps distinct" true out.Phys_prop.distinct;
  Alcotest.(check bool) "sort sets order" true
    (Sort_order.equal out.Phys_prop.order (Sort_order.asc [ "r.a" ]));
  (* Hash dedup destroys order but establishes distinct (enforce one,
     destroy another — paper §2.2). *)
  let out2 = M.deliver Physical.Hash_dedup [ sorted ] in
  Alcotest.(check bool) "dedup destroys order" true (out2.Phys_prop.order = []);
  Alcotest.(check bool) "dedup sets distinct" true out2.Phys_prop.distinct;
  (* Hash join delivers nothing. *)
  Alcotest.(check bool) "hash join unordered" true
    (Phys_prop.equal (M.deliver (Physical.Hash_join ([], Expr.true_)) [ sorted; sorted ]) Phys_prop.any);
  (* Nested loops preserves the outer order. *)
  let out3 = M.deliver (Physical.Nested_loop_join Expr.true_) [ sorted; Phys_prop.any ] in
  Alcotest.(check bool) "nl keeps outer order" true
    (Sort_order.equal out3.Phys_prop.order sorted.Phys_prop.order)

let test_enforcers_valid_columns_only () =
  let props = Relmodel.Derive.expr catalog (Logical.get "r") in
  let good = M.enforcers ~props ~required:(Phys_prop.sorted (Sort_order.asc [ "r.a" ])) in
  Alcotest.(check bool) "sort offered for own column" true
    (List.exists (fun (alg, _, _) -> match alg with Physical.Sort _ -> true | _ -> false) good);
  let bad = M.enforcers ~props ~required:(Phys_prop.sorted (Sort_order.asc [ "s.a" ])) in
  Alcotest.(check bool) "no sort on a foreign column" true
    (not (List.exists (fun (alg, _, _) -> match alg with Physical.Sort _ -> true | _ -> false) bad))

let test_enforcers_trivial_requirement () =
  let props = Relmodel.Derive.expr catalog (Logical.get "r") in
  Alcotest.(check int) "no enforcers for the trivial goal" 0
    (List.length (M.enforcers ~props ~required:Phys_prop.any))

let test_enforcer_excluding_vectors () =
  let props = Relmodel.Derive.expr catalog (Logical.get "r") in
  let required = Phys_prop.sorted (Sort_order.asc [ "r.a" ]) in
  List.iter
    (fun (alg, relaxed, excluded) ->
      match alg with
      | Physical.Sort o ->
        Alcotest.(check bool) "sort on the required order" true
          (Sort_order.equal o required.Phys_prop.order);
        Alcotest.(check bool) "relaxed drops the order" true (relaxed.Phys_prop.order = []);
        Alcotest.(check bool) "excluded carries the order" true
          (Sort_order.equal excluded.Phys_prop.order required.Phys_prop.order)
      | _ -> ())
    (M.enforcers ~props ~required)

let test_plan_cost_estimate_consistent () =
  (* For a plan whose shape matches the original derivation, the
     neutral estimator and the optimizer's own accounting agree. *)
  let q = Logical.select Expr.(col "r.a" >% int 2) (Logical.get "r") in
  let result =
    Relmodel.Optimizer.optimize
      { (Relmodel.Optimizer.request catalog) with restore_columns = false }
      q ~required:Phys_prop.any
  in
  match result.plan with
  | None -> Alcotest.fail "no plan"
  | Some p ->
    let neutral =
      Relmodel.Plan_cost.estimate catalog (Relmodel.Optimizer.to_physical p)
    in
    Alcotest.(check (float 1e-9)) "own == neutral" (Cost.total p.cost) (Cost.total neutral)

let test_plan_cost_monotone_in_children () =
  let scan = Physical.mk (Physical.Table_scan "r") [] in
  let filtered = Physical.mk (Physical.Filter Expr.(col "r.a" >% int 5)) [ scan ] in
  let c1 = Cost.total (Relmodel.Plan_cost.estimate catalog scan) in
  let c2 = Cost.total (Relmodel.Plan_cost.estimate catalog filtered) in
  Alcotest.(check bool) "filter adds cost" true (c2 > c1)

let test_cost_adt_laws () =
  let a = Cost.make ~io:1. ~cpu:2. and b = Cost.make ~io:3. ~cpu:0.5 in
  Alcotest.(check (float 1e-12)) "add total" (Cost.total a +. Cost.total b)
    (Cost.total (Cost.add a b));
  Alcotest.(check bool) "zero is neutral" true (Cost.compare (Cost.add a Cost.zero) a = 0);
  Alcotest.(check bool) "infinite absorbs" true (Cost.is_infinite (Cost.add a Cost.infinite));
  Alcotest.(check bool) "sub clamps at zero" true
    (Cost.total (Cost.sub Cost.zero a) = 0.);
  Alcotest.(check bool) "sub of infinite stays infinite" true
    (Cost.is_infinite (Cost.sub Cost.infinite a))

let suite =
  [
    Alcotest.test_case "derive get" `Quick test_derive_get;
    Alcotest.test_case "derive select" `Quick test_derive_select_reduces;
    Alcotest.test_case "derive join" `Quick test_derive_join_schema_and_relations;
    Alcotest.test_case "derive group by" `Quick test_derive_group_by;
    Alcotest.test_case "commuted join same card" `Quick test_commuted_join_same_card;
    Alcotest.test_case "assoc predicate split" `Quick test_assoc_split;
    Alcotest.test_case "links_schemas" `Quick test_links_schemas;
    Alcotest.test_case "deliver functions" `Quick test_deliver_functions;
    Alcotest.test_case "enforcers check columns" `Quick test_enforcers_valid_columns_only;
    Alcotest.test_case "no enforcers for any" `Quick test_enforcers_trivial_requirement;
    Alcotest.test_case "excluding vectors" `Quick test_enforcer_excluding_vectors;
    Alcotest.test_case "plan cost consistency" `Quick test_plan_cost_estimate_consistent;
    Alcotest.test_case "plan cost monotone" `Quick test_plan_cost_monotone_in_children;
    Alcotest.test_case "cost ADT laws" `Quick test_cost_adt_laws;
  ]
