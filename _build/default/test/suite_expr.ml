(* Unit and property tests for the scalar expression language. *)

open Relalg
open Expr

let schema : Schema.t =
  [|
    Schema.attribute "r.a" Schema.TInt;
    Schema.attribute "r.b" Schema.TInt;
    Schema.attribute "s.a" Schema.TInt;
  |]

let tuple a b c : Tuple.t = [| Value.Int a; Value.Int b; Value.Int c |]

let test_eval_comparisons () =
  let holds e t = Expr.eval_pred schema e t in
  Alcotest.(check bool) "eq true" true (holds (col "r.a" =% int 1) (tuple 1 2 3));
  Alcotest.(check bool) "eq false" false (holds (col "r.a" =% int 2) (tuple 1 2 3));
  Alcotest.(check bool) "lt" true (holds (col "r.a" <% col "r.b") (tuple 1 2 3));
  Alcotest.(check bool) "and short-circuit" false
    (holds (col "r.a" =% int 9 &&% (col "r.b" =% int 2)) (tuple 1 2 3));
  Alcotest.(check bool) "or" true
    (holds (col "r.a" =% int 9 ||% (col "r.b" =% int 2)) (tuple 1 2 3));
  Alcotest.(check bool) "not" true (holds (Not (col "r.a" =% int 9)) (tuple 1 2 3))

let test_null_semantics () =
  let t : Tuple.t = [| Value.Null; Value.Int 2; Value.Int 3 |] in
  Alcotest.(check bool) "null comparison filters out" false
    (Expr.eval_pred schema (col "r.a" =% int 1) t);
  Alcotest.(check bool) "null <> also false" false
    (Expr.eval_pred schema (Cmp (Ne, col "r.a", int 1)) t);
  (* NOT (null = 1) is null, not true. *)
  Alcotest.(check bool) "not of null is not true" false
    (Expr.eval_pred schema (Not (col "r.a" =% int 1)) t);
  (* A disjunction with a true arm survives a null arm. *)
  Alcotest.(check bool) "null or true" true
    (Expr.eval_pred schema (col "r.a" =% int 1 ||% (col "r.b" =% int 2)) t)

let test_arith_eval () =
  let f = Expr.compile schema (Arith (Add, col "r.a", Arith (Mul, col "r.b", int 10))) in
  Alcotest.(check bool) "1 + 2*10" true (Value.equal (f (tuple 1 2 3)) (Value.Int 21))

let test_columns () =
  let e = col "r.a" =% col "s.a" &&% (col "r.a" >% int 0) in
  Alcotest.(check (list string)) "columns dedup in order" [ "r.a"; "s.a" ] (Expr.columns e)

let test_conjuncts_roundtrip () =
  let e = col "r.a" =% int 1 &&% (col "r.b" =% int 2) &&% (col "s.a" =% int 3) in
  Alcotest.(check int) "three conjuncts" 3 (List.length (Expr.conjuncts e));
  Alcotest.(check int) "true_ has none" 0 (List.length (Expr.conjuncts true_));
  Alcotest.(check bool) "conjoin [] = true" true (Expr.equal (Expr.conjoin []) true_)

let test_conjoin_canonical () =
  let a = col "r.a" =% int 1 and b = col "r.b" =% int 2 in
  Alcotest.(check bool) "order-insensitive" true
    (Expr.equal (Expr.conjoin [ a; b ]) (Expr.conjoin [ b; a ]));
  Alcotest.(check bool) "duplicate-insensitive" true
    (Expr.equal (Expr.conjoin [ a; a; b ]) (Expr.conjoin [ a; b ]))

let test_equijoin_keys () =
  let left = Schema.project schema [ "r.a"; "r.b" ] in
  let right = Schema.project schema [ "s.a" ] in
  let keys = Expr.equijoin_keys (col "r.a" =% col "s.a") ~left ~right in
  Alcotest.(check (list (pair string string))) "keys" [ ("r.a", "s.a") ] keys;
  let flipped = Expr.equijoin_keys (col "s.a" =% col "r.b") ~left ~right in
  Alcotest.(check (list (pair string string))) "flipped sides" [ ("r.b", "s.a") ] flipped;
  let none = Expr.equijoin_keys (col "r.a" =% col "r.b") ~left ~right in
  Alcotest.(check int) "same-side equality is not a join key" 0 (List.length none);
  let range = Expr.equijoin_keys (col "r.a" <% col "s.a") ~left ~right in
  Alcotest.(check int) "inequality is not a key" 0 (List.length range)

let test_refers_only_to () =
  let left = Schema.project schema [ "r.a"; "r.b" ] in
  Alcotest.(check bool) "within" true (Expr.refers_only_to left (col "r.a" >% int 0));
  Alcotest.(check bool) "outside" false (Expr.refers_only_to left (col "s.a" >% int 0))

(* Random predicate generator over the fixed schema, for property tests. *)
let rec pred_gen depth =
  QCheck.Gen.(
    let atom =
      let* c = oneofl [ "r.a"; "r.b"; "s.a" ] in
      let* k = int_range (-5) 5 in
      let* op = oneofl [ Eq; Ne; Lt; Le; Gt; Ge ] in
      return (Cmp (op, Col c, Const (Value.Int k)))
    in
    if depth = 0 then atom
    else
      frequency
        [
          (3, atom);
          (1, map2 (fun a b -> And (a, b)) (pred_gen (depth - 1)) (pred_gen (depth - 1)));
          (1, map2 (fun a b -> Or (a, b)) (pred_gen (depth - 1)) (pred_gen (depth - 1)));
          (1, map (fun a -> Not a) (pred_gen (depth - 1)));
        ])

let pred_arb = QCheck.make ~print:Expr.to_string (pred_gen 3)

let tuple_gen =
  QCheck.Gen.(
    let* a = int_range (-5) 5 and* b = int_range (-5) 5 and* c = int_range (-5) 5 in
    return (tuple a b c))

let tuple_arb = QCheck.make ~print:(Format.asprintf "%a" Tuple.pp) tuple_gen

let prop_conjoin_preserves_semantics =
  Helpers.qcheck_case "conjoin(conjuncts e) == e under eval"
    (QCheck.pair pred_arb tuple_arb)
    (fun (e, t) ->
      let e' = Expr.conjoin (Expr.conjuncts e) in
      Expr.eval_pred schema e t = Expr.eval_pred schema e' t)

let prop_not_not =
  Helpers.qcheck_case "eval(not (not e)) == eval e"
    (QCheck.pair pred_arb tuple_arb)
    (fun (e, t) ->
      Expr.eval_pred schema (Not (Not e)) t = Expr.eval_pred schema e t)

let prop_and_commutative =
  Helpers.qcheck_case "AND commutative under eval"
    (QCheck.triple pred_arb pred_arb tuple_arb)
    (fun (a, b, t) ->
      Expr.eval_pred schema (And (a, b)) t = Expr.eval_pred schema (And (b, a)) t)

let suite =
  [
    Alcotest.test_case "comparisons" `Quick test_eval_comparisons;
    Alcotest.test_case "null semantics" `Quick test_null_semantics;
    Alcotest.test_case "arithmetic eval" `Quick test_arith_eval;
    Alcotest.test_case "columns" `Quick test_columns;
    Alcotest.test_case "conjuncts roundtrip" `Quick test_conjuncts_roundtrip;
    Alcotest.test_case "conjoin canonical" `Quick test_conjoin_canonical;
    Alcotest.test_case "equijoin keys" `Quick test_equijoin_keys;
    Alcotest.test_case "refers_only_to" `Quick test_refers_only_to;
    prop_conjoin_preserves_semantics;
    prop_not_not;
    prop_and_commutative;
  ]
