(* Unit tests for the Volcano iterator execution engine: each operator's
   semantics in isolation, plus I/O accounting. *)

open Relalg

let schema_rk : Schema.t =
  [| Schema.attribute "r.k" Schema.TInt; Schema.attribute "r.v" Schema.TInt |]

let schema_sk : Schema.t =
  [| Schema.attribute "s.k" Schema.TInt; Schema.attribute "s.w" Schema.TInt |]

let rows l : Tuple.t array = Array.of_list (List.map (fun (a, b) -> [| Value.Int a; Value.Int b |]) l)

let ints (t : Tuple.t) =
  Array.to_list t
  |> List.map (function Value.Int i -> i | v -> Alcotest.fail (Value.to_string v))

let run_cursor c = Array.to_list (Executor.Cursor.to_array c) |> List.map ints

let src schema l = Executor.Cursor.of_array schema (rows l)

let test_hash_join_duplicates () =
  (* Duplicate keys on both sides: output is the full group cross
     product. *)
  let left = src schema_rk [ (1, 10); (1, 11); (2, 20) ] in
  let right = src schema_sk [ (1, 100); (1, 101); (3, 300) ] in
  let c = Executor.Engine.hash_join [ ("r.k", "s.k") ] Expr.true_ left right in
  let out = run_cursor c in
  Alcotest.(check int) "2x2 matches for key 1" 4 (List.length out);
  List.iter
    (fun row -> match row with
       | [ k1; _; k2; _ ] -> Alcotest.(check int) "keys equal" k1 k2
       | _ -> Alcotest.fail "bad arity")
    out

let test_hash_join_residual () =
  let left = src schema_rk [ (1, 10); (1, 11) ] in
  let right = src schema_sk [ (1, 100) ] in
  let residual = Expr.(col "r.k" =% col "s.k" &&% (col "r.v" >% int 10)) in
  let c = Executor.Engine.hash_join [ ("r.k", "s.k") ] residual left right in
  Alcotest.(check int) "residual filters" 1 (List.length (run_cursor c))

let test_merge_join_groups () =
  (* Sorted inputs with duplicate key groups on both sides. *)
  let left = src schema_rk [ (1, 10); (2, 20); (2, 21); (4, 40) ] in
  let right = src schema_sk [ (2, 200); (2, 201); (3, 300); (4, 400) ] in
  let c = Executor.Engine.merge_join [ ("r.k", "s.k") ] Expr.true_ left right in
  let out = run_cursor c in
  (* key 2: 2x2 = 4; key 4: 1x1 = 1. *)
  Alcotest.(check int) "group cross products" 5 (List.length out)

let test_merge_equals_hash () =
  let ldata = [ (1, 1); (1, 2); (3, 3); (5, 4); (5, 5); (5, 6) ] in
  let rdata = [ (1, 9); (2, 8); (5, 7); (5, 6) ] in
  let mj =
    Executor.Engine.merge_join [ ("r.k", "s.k") ] Expr.true_ (src schema_rk ldata)
      (src schema_sk rdata)
  in
  let hj =
    Executor.Engine.hash_join [ ("r.k", "s.k") ] Expr.true_ (src schema_rk ldata)
      (src schema_sk rdata)
  in
  let sort = List.sort compare in
  Alcotest.(check bool) "same output" true (sort (run_cursor mj) = sort (run_cursor hj))

let test_nested_loop_rescan () =
  let left = src schema_rk [ (1, 10); (2, 20) ] in
  let right = src schema_sk [ (1, 100); (2, 200) ] in
  let c =
    Executor.Engine.nested_loop_join Expr.(col "r.k" =% col "s.k") left right
  in
  Alcotest.(check int) "both outer rows match" 2 (List.length (run_cursor c))

let test_sort_and_dedup () =
  let catalog = Catalog.create () in
  let ctx = Executor.Engine.context catalog in
  let input = src schema_rk [ (3, 1); (1, 1); (2, 1); (1, 1) ] in
  let sorted = Executor.Engine.sort_op ctx (Sort_order.asc [ "r.k" ]) ~dedup:false input in
  Alcotest.(check (list (list int))) "sorted with duplicates"
    [ [ 1; 1 ]; [ 1; 1 ]; [ 2; 1 ]; [ 3; 1 ] ]
    (run_cursor sorted);
  let input2 = src schema_rk [ (3, 1); (1, 1); (2, 1); (1, 1) ] in
  let deduped = Executor.Engine.sort_op ctx (Sort_order.asc [ "r.k" ]) ~dedup:true input2 in
  Alcotest.(check (list (list int))) "sort_dedup removes duplicates"
    [ [ 1; 1 ]; [ 2; 1 ]; [ 3; 1 ] ]
    (run_cursor deduped)

let test_hash_dedup () =
  let input = src schema_rk [ (1, 1); (2, 2); (1, 1); (2, 2); (3, 3) ] in
  let c = Executor.Engine.hash_dedup_op input in
  Alcotest.(check int) "distinct rows" 3 (List.length (run_cursor c))

let test_merge_setops_with_duplicates () =
  (* Sorted but NOT distinct inputs: merge set ops dedup on the fly. *)
  let l = src schema_rk [ (1, 0); (1, 0); (2, 0); (3, 0) ] in
  let r = src schema_rk [ (2, 0); (2, 0); (4, 0) ] in
  let union = Executor.Engine.merge_setop `Union l r in
  Alcotest.(check (list (list int))) "union"
    [ [ 1; 0 ]; [ 2; 0 ]; [ 3; 0 ]; [ 4; 0 ] ]
    (run_cursor union);
  let l2 = src schema_rk [ (1, 0); (1, 0); (2, 0); (3, 0) ] in
  let r2 = src schema_rk [ (2, 0); (2, 0); (4, 0) ] in
  let inter = Executor.Engine.merge_setop `Intersect l2 r2 in
  Alcotest.(check (list (list int))) "intersect" [ [ 2; 0 ] ] (run_cursor inter);
  let l3 = src schema_rk [ (1, 0); (1, 0); (2, 0); (3, 0) ] in
  let r3 = src schema_rk [ (2, 0); (2, 0); (4, 0) ] in
  let diff = Executor.Engine.merge_setop `Difference l3 r3 in
  Alcotest.(check (list (list int))) "difference" [ [ 1; 0 ]; [ 3; 0 ] ] (run_cursor diff)

let test_hash_setops () =
  let l () = src schema_rk [ (1, 0); (2, 0); (2, 0); (3, 0) ] in
  let r () = src schema_rk [ (2, 0); (4, 0) ] in
  let sort = List.sort compare in
  Alcotest.(check (list (list int))) "hash union"
    [ [ 1; 0 ]; [ 2; 0 ]; [ 3; 0 ]; [ 4; 0 ] ]
    (sort (run_cursor (Executor.Engine.hash_union (l ()) (r ()))));
  Alcotest.(check (list (list int))) "hash intersect" [ [ 2; 0 ] ]
    (sort (run_cursor (Executor.Engine.hash_semi ~anti:false (l ()) (r ()))));
  Alcotest.(check (list (list int))) "hash difference" [ [ 1; 0 ]; [ 3; 0 ] ]
    (sort (run_cursor (Executor.Engine.hash_semi ~anti:true (l ()) (r ()))))

let aggs =
  [
    { Logical.func = Logical.Count; column = None; alias = "n" };
    { Logical.func = Logical.Sum; column = Some "r.v"; alias = "sum_v" };
    { Logical.func = Logical.Min; column = Some "r.v"; alias = "min_v" };
    { Logical.func = Logical.Max; column = Some "r.v"; alias = "max_v" };
    { Logical.func = Logical.Avg; column = Some "r.v"; alias = "avg_v" };
  ]

let test_hash_aggregate () =
  let input = src schema_rk [ (1, 10); (1, 20); (2, 5) ] in
  let c = Executor.Engine.hash_aggregate [ "r.k" ] aggs input in
  let out = Array.to_list (Executor.Cursor.to_array c) in
  Alcotest.(check int) "two groups" 2 (List.length out);
  let g1 = List.find (fun t -> Value.equal t.(0) (Value.Int 1)) out in
  Alcotest.(check bool) "count" true (Value.equal g1.(1) (Value.Int 2));
  Alcotest.(check bool) "sum" true (Value.equal g1.(2) (Value.Int 30));
  Alcotest.(check bool) "min" true (Value.equal g1.(3) (Value.Int 10));
  Alcotest.(check bool) "max" true (Value.equal g1.(4) (Value.Int 20));
  Alcotest.(check bool) "avg" true (Value.equal g1.(5) (Value.Float 15.))

let test_stream_aggregate_matches_hash () =
  let data = [ (1, 10); (1, 20); (2, 5); (3, 1); (3, 2); (3, 3) ] in
  let h = Executor.Engine.hash_aggregate [ "r.k" ] aggs (src schema_rk data) in
  let s = Executor.Engine.stream_aggregate [ "r.k" ] aggs (src schema_rk data) in
  let arr c = Array.to_list (Executor.Cursor.to_array c) |> List.map Array.to_list in
  Alcotest.(check bool) "same groups" true
    (List.sort compare (arr h) = List.sort compare (arr s))

let test_aggregate_nulls () =
  let data : Tuple.t array =
    [| [| Value.Int 1; Value.Null |]; [| Value.Int 1; Value.Int 5 |] |]
  in
  let input = Executor.Cursor.of_array schema_rk data in
  let c =
    Executor.Engine.hash_aggregate [ "r.k" ]
      [
        { Logical.func = Logical.Count; column = Some "r.v"; alias = "nv" };
        { Logical.func = Logical.Count; column = None; alias = "n" };
        { Logical.func = Logical.Sum; column = Some "r.v"; alias = "s" };
      ]
      input
  in
  match Array.to_list (Executor.Cursor.to_array c) with
  | [ row ] ->
    Alcotest.(check bool) "count(col) skips null" true (Value.equal row.(1) (Value.Int 1));
    Alcotest.(check bool) "count(*) keeps null" true (Value.equal row.(2) (Value.Int 2));
    Alcotest.(check bool) "sum skips null" true (Value.equal row.(3) (Value.Int 5))
  | _ -> Alcotest.fail "expected a single group"

let test_empty_group_by_all () =
  (* Grouping by no keys: one row even over multiple inputs (grand
     total); zero rows over empty input (SQL's empty grouping). *)
  let c =
    Executor.Engine.hash_aggregate []
      [ { Logical.func = Logical.Count; column = None; alias = "n" } ]
      (src schema_rk [ (1, 1); (2, 2) ])
  in
  (match Array.to_list (Executor.Cursor.to_array c) with
   | [ row ] -> Alcotest.(check bool) "count 2" true (Value.equal row.(0) (Value.Int 2))
   | _ -> Alcotest.fail "expected one total row")

let test_io_accounting () =
  let catalog = Catalog.create () in
  ignore
    (Catalog.add_synthetic catalog ~name:"big"
       ~columns:[ ("k", Catalog.Serial); ("v", Catalog.Uniform_int (0, 9)) ]
       ~rows:10_000 ~seed:1 ());
  let plan = Physical.mk (Physical.Table_scan "big") [] in
  let _, _, io = Executor.run catalog plan in
  (* 10,000 rows x 16 bytes = 160,000 bytes = 40 pages of 4096. *)
  Alcotest.(check int) "page reads" 40 io.Executor.Io_stats.page_reads;
  (* A spilling sort writes and re-reads its input. *)
  let sorted = Physical.mk (Physical.Sort (Sort_order.asc [ "big.v" ])) [ plan ] in
  let _, _, io2 = Executor.run ~memory_pages:8 catalog sorted in
  Alcotest.(check int) "spill writes" 40 io2.Executor.Io_stats.page_writes;
  Alcotest.(check int) "spill re-reads" 80 io2.Executor.Io_stats.page_reads;
  let _, _, io3 = Executor.run ~memory_pages:1024 catalog sorted in
  Alcotest.(check int) "in-memory sort has no spill" 0 io3.Executor.Io_stats.page_writes

let test_cursor_reopen () =
  (* Cursors are restartable: open/next/close then open again. *)
  let c = src schema_rk [ (1, 1); (2, 2) ] in
  let first = Executor.Cursor.to_array c in
  let second = Executor.Cursor.to_array c in
  Alcotest.(check int) "same row count on re-open" (Array.length first) (Array.length second)

let suite =
  [
    Alcotest.test_case "hash join duplicate keys" `Quick test_hash_join_duplicates;
    Alcotest.test_case "hash join residual predicate" `Quick test_hash_join_residual;
    Alcotest.test_case "merge join key groups" `Quick test_merge_join_groups;
    Alcotest.test_case "merge join == hash join" `Quick test_merge_equals_hash;
    Alcotest.test_case "nested loop" `Quick test_nested_loop_rescan;
    Alcotest.test_case "sort and sort_dedup" `Quick test_sort_and_dedup;
    Alcotest.test_case "hash dedup" `Quick test_hash_dedup;
    Alcotest.test_case "merge set ops with duplicates" `Quick test_merge_setops_with_duplicates;
    Alcotest.test_case "hash set ops" `Quick test_hash_setops;
    Alcotest.test_case "hash aggregate" `Quick test_hash_aggregate;
    Alcotest.test_case "stream == hash aggregate" `Quick test_stream_aggregate_matches_hash;
    Alcotest.test_case "aggregate null handling" `Quick test_aggregate_nulls;
    Alcotest.test_case "grand total aggregate" `Quick test_empty_group_by_all;
    Alcotest.test_case "io accounting" `Quick test_io_accounting;
    Alcotest.test_case "cursor re-open" `Quick test_cursor_reopen;
  ]
