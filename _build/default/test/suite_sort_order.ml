(* Unit and property tests for sort orders and physical property
   vectors. *)

open Relalg

let order_gen =
  QCheck.Gen.(
    list_size (int_range 0 3)
      (pair (oneofl [ "a"; "b"; "c"; "d" ]) (oneofl [ Sort_order.Asc; Sort_order.Desc ])))

let order_arb = QCheck.make ~print:Sort_order.to_string order_gen

let test_covers_prefix () =
  let ab = Sort_order.asc [ "a"; "b" ] in
  let a = Sort_order.asc [ "a" ] in
  Alcotest.(check bool) "longer covers prefix" true (Sort_order.covers ~provided:ab ~required:a);
  Alcotest.(check bool) "prefix does not cover longer" false
    (Sort_order.covers ~provided:a ~required:ab);
  Alcotest.(check bool) "anything covers empty" true (Sort_order.covers ~provided:[] ~required:[]);
  Alcotest.(check bool) "direction matters" false
    (Sort_order.covers ~provided:[ ("a", Sort_order.Desc) ] ~required:a)

let test_is_sorted () =
  let schema = [| Schema.attribute "a" Schema.TInt |] in
  let sorted = [| [| Value.Int 1 |]; [| Value.Int 2 |]; [| Value.Int 2 |] |] in
  let unsorted = [| [| Value.Int 3 |]; [| Value.Int 1 |] |] in
  Alcotest.(check bool) "sorted" true (Sort_order.is_sorted schema (Sort_order.asc [ "a" ]) sorted);
  Alcotest.(check bool) "unsorted" false
    (Sort_order.is_sorted schema (Sort_order.asc [ "a" ]) unsorted);
  Alcotest.(check bool) "desc view" true
    (Sort_order.is_sorted schema [ ("a", Sort_order.Desc) ] unsorted)

let prop_covers_reflexive =
  Helpers.qcheck_case "covers reflexive" order_arb (fun o ->
      Sort_order.covers ~provided:o ~required:o)

let prop_covers_transitive =
  Helpers.qcheck_case "covers transitive"
    (QCheck.triple order_arb order_arb order_arb)
    (fun (a, b, c) ->
      (not (Sort_order.covers ~provided:a ~required:b && Sort_order.covers ~provided:b ~required:c))
      || Sort_order.covers ~provided:a ~required:c)

let prop_covers_empty =
  Helpers.qcheck_case "empty requirement always covered" order_arb (fun o ->
      Sort_order.covers ~provided:o ~required:[])

(* Physical property vectors inherit the same laws. *)

let phys_gen =
  QCheck.Gen.(
    let* order = order_gen
    and* distinct = bool
    and* partitioning =
      oneof
        [
          return Phys_prop.Any_part;
          return Phys_prop.Singleton;
          map (fun c -> Phys_prop.Hashed [ c ]) (oneofl [ "a"; "b" ]);
        ]
    in
    return { Phys_prop.order; distinct; partitioning })

let phys_arb = QCheck.make ~print:Phys_prop.to_string phys_gen

let prop_phys_covers_reflexive =
  Helpers.qcheck_case "phys covers reflexive" phys_arb (fun p ->
      Phys_prop.covers ~provided:p ~required:p)

let prop_phys_covers_transitive =
  Helpers.qcheck_case "phys covers transitive"
    (QCheck.triple phys_arb phys_arb phys_arb)
    (fun (a, b, c) ->
      (not (Phys_prop.covers ~provided:a ~required:b && Phys_prop.covers ~provided:b ~required:c))
      || Phys_prop.covers ~provided:a ~required:c)

let prop_phys_any_bottom =
  Helpers.qcheck_case "any is covered by everything" phys_arb (fun p ->
      Phys_prop.covers ~provided:p ~required:Phys_prop.any)

let prop_phys_hash_equal =
  Helpers.qcheck_case "equal vectors hash equal"
    (QCheck.pair phys_arb phys_arb)
    (fun (a, b) -> (not (Phys_prop.equal a b)) || Phys_prop.hash a = Phys_prop.hash b)

let suite =
  [
    Alcotest.test_case "covers is prefix" `Quick test_covers_prefix;
    Alcotest.test_case "is_sorted" `Quick test_is_sorted;
    prop_covers_reflexive;
    prop_covers_transitive;
    prop_covers_empty;
    prop_phys_covers_reflexive;
    prop_phys_covers_transitive;
    prop_phys_any_bottom;
    prop_phys_hash_equal;
  ]
