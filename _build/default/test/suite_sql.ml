(* Tests of the SQL front end: parsing, translation, error reporting,
   and SQL-to-result integration through the optimizer and executor. *)

open Relalg

let catalog = Helpers.small_catalog ()

let parse sql = Sqlfront.parse catalog sql

let test_simple_select () =
  let stmt = parse "SELECT * FROM r" in
  (match stmt.logical.Logical.op with
   | Logical.Get "r" -> ()
   | _ -> Alcotest.fail "expected a bare get");
  Alcotest.(check bool) "no requirements" true (Phys_prop.equal stmt.required Phys_prop.any)

let test_where_becomes_select () =
  let stmt = parse "SELECT * FROM r WHERE r.a > 5 AND r.b = 2" in
  match stmt.logical.Logical.op with
  | Logical.Select p -> Alcotest.(check int) "two conjuncts" 2 (List.length (Expr.conjuncts p))
  | _ -> Alcotest.fail "expected a selection"

let test_join_spine () =
  let stmt = parse "SELECT * FROM r, s, t WHERE r.a = s.a AND s.c = t.c" in
  let rels = Logical.relations stmt.logical in
  Alcotest.(check (list string)) "all tables" [ "r"; "s"; "t" ] rels

let test_unqualified_resolution () =
  let stmt = parse "SELECT * FROM r, s WHERE b = 3" in
  match stmt.logical.Logical.op with
  | Logical.Select p ->
    Alcotest.(check (list string)) "resolved to r.b" [ "r.b" ] (Expr.columns p)
  | _ -> Alcotest.fail "expected a selection"

let test_order_by_and_distinct () =
  let stmt = parse "SELECT DISTINCT r.a FROM r ORDER BY r.a DESC" in
  Alcotest.(check bool) "distinct" true stmt.required.Phys_prop.distinct;
  Alcotest.(check bool) "desc order" true
    (Sort_order.equal stmt.required.Phys_prop.order [ ("r.a", Sort_order.Desc) ])

let test_projection_list () =
  let stmt = parse "SELECT r.a, r.b FROM r" in
  match stmt.logical.Logical.op with
  | Logical.Project cols -> Alcotest.(check (list string)) "columns" [ "r.a"; "r.b" ] cols
  | _ -> Alcotest.fail "expected a projection"

let test_aggregates () =
  let stmt = parse "SELECT r.a, COUNT(*) AS n, SUM(r.b) FROM r GROUP BY r.a" in
  match stmt.logical.Logical.op with
  | Logical.Project cols ->
    Alcotest.(check (list string)) "projection includes aliases" [ "r.a"; "n"; "sum_b" ] cols;
    (match (List.hd stmt.logical.Logical.inputs).Logical.op with
     | Logical.Group_by (keys, aggs) ->
       Alcotest.(check (list string)) "keys" [ "r.a" ] keys;
       Alcotest.(check int) "two aggregates" 2 (List.length aggs)
     | _ -> Alcotest.fail "expected group_by under projection")
  | _ -> Alcotest.fail "expected a projection"

let test_union () =
  let stmt = parse "SELECT r.a FROM r UNION SELECT s.a FROM s" in
  match stmt.logical.Logical.op with
  | Logical.Union -> ()
  | _ -> Alcotest.fail "expected a union"

let test_parse_errors () =
  let expect_error sql =
    match parse sql with
    | exception Sqlfront.Parse_error _ -> ()
    | _ -> Alcotest.fail ("should not parse: " ^ sql)
  in
  expect_error "SELECT";
  expect_error "SELECT * FROM";
  expect_error "SELECT * FROM nope";
  expect_error "SELECT * FROM r WHERE";
  expect_error "SELECT * FROM r WHERE r.zzz = 1";
  expect_error "SELECT r.a, * FROM r";
  (* unqualified "id" is ambiguous between r.id and s.id *)
  expect_error "SELECT id FROM r, s WHERE true";
  expect_error "SELECT r.a FROM r GROUP BY r.b";
  expect_error "SELECT * FROM r trailing"

let test_sql_to_rows () =
  (* Full pipeline: SQL -> logical -> optimize -> execute vs naive. *)
  let run sql =
    let stmt = parse sql in
    let result =
      Relmodel.Optimizer.optimize (Relmodel.Optimizer.request catalog) stmt.logical
        ~required:stmt.required
    in
    match result.plan with
    | None -> Alcotest.fail "no plan"
    | Some p ->
      let rows, schema, _ = Executor.run catalog (Relmodel.Optimizer.to_physical p) in
      (rows, schema, stmt)
  in
  let rows, schema, stmt =
    run "SELECT r.id, s.id FROM r, s WHERE r.a = s.a AND r.b <= 2 ORDER BY r.id"
  in
  let expected, _ = Executor.naive catalog stmt.logical in
  Helpers.check_same_bag "sql result = naive" expected rows;
  Alcotest.(check bool) "ordered by r.id" true
    (Sort_order.is_sorted schema (Sort_order.asc [ "r.id" ]) rows);
  let agg_rows, _, _ = run "SELECT r.a, COUNT(*) AS n FROM r GROUP BY r.a" in
  let total =
    Array.fold_left
      (fun acc t -> match t.(1) with Value.Int n -> acc + n | _ -> acc)
      0 agg_rows
  in
  Alcotest.(check int) "counts add up to table size" 60 total

let test_literals_and_operators () =
  let stmt = parse "SELECT * FROM r WHERE r.a >= 1 AND r.a <> 3 OR NOT r.b < 2" in
  match stmt.logical.Logical.op with
  | Logical.Select _ -> ()
  | _ -> Alcotest.fail "expected a selection"

let suite =
  [
    Alcotest.test_case "simple select" `Quick test_simple_select;
    Alcotest.test_case "where" `Quick test_where_becomes_select;
    Alcotest.test_case "join spine" `Quick test_join_spine;
    Alcotest.test_case "unqualified columns" `Quick test_unqualified_resolution;
    Alcotest.test_case "order by / distinct" `Quick test_order_by_and_distinct;
    Alcotest.test_case "projection" `Quick test_projection_list;
    Alcotest.test_case "aggregates" `Quick test_aggregates;
    Alcotest.test_case "union" `Quick test_union;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    Alcotest.test_case "sql to rows" `Quick test_sql_to_rows;
    Alcotest.test_case "literals and operators" `Quick test_literals_and_operators;
  ]
