(* Tests of the object-algebra model: the generator applied to a second
   data model (data-model independence), assembledness as a physical
   property with two enforcers, and the materialize rules. *)

open Oomodel.Oo_algebra

let store : store =
  [
    {
      cname = "emp";
      extent_size = 10_000.;
      object_bytes = 120;
      references = [ ("dept", "dept"); ("manager", "emp") ];
    };
    { cname = "dept"; extent_size = 200.; object_bytes = 80; references = [ ("floor", "room") ] };
    { cname = "room"; extent_size = 40.; object_bytes = 60; references = [] };
  ]

let node = Volcano.Tree.node

let extent c = node (Extent c) []

let test_valid_path () =
  Alcotest.(check bool) "one step" true (valid_path store ~root:"emp" [ "dept" ]);
  Alcotest.(check bool) "two steps" true (valid_path store ~root:"emp" [ "dept"; "floor" ]);
  Alcotest.(check bool) "self reference" true (valid_path store ~root:"emp" [ "manager"; "dept" ]);
  Alcotest.(check bool) "bad step" false (valid_path store ~root:"emp" [ "floor" ]);
  Alcotest.(check bool) "beyond a leaf class" false
    (valid_path store ~root:"emp" [ "dept"; "floor"; "dept" ])

let test_path_set_covers () =
  let s1 = Path_set.of_list [ [ "dept" ]; [ "manager" ] ] in
  let s2 = Path_set.of_list [ [ "dept" ] ] in
  Alcotest.(check bool) "superset covers" true (phys_covers ~provided:s1 ~required:s2);
  Alcotest.(check bool) "subset does not" false (phys_covers ~provided:s2 ~required:s1)

let optimize ?params query ~required = Oomodel.Oo_model.optimize ~store ?params query ~required

let test_extent_scan () =
  let result = optimize (extent "emp") ~required:Path_set.empty in
  match result.plan with
  | Some { alg = Extent_scan "emp"; _ } -> ()
  | _ -> Alcotest.fail "expected a bare extent scan"

let test_filter_requires_assembly () =
  (* A filter over a path expression forces the path to be assembled
     below it. *)
  let query = node (O_select ([ "dept" ], 0.1)) [ extent "emp" ] in
  let result = optimize query ~required:Path_set.empty in
  match result.plan with
  | Some { alg = O_filter _; children = [ child ]; _ } -> begin
    match child.alg with
    | Assembly ps | Pointer_chase ps ->
      Alcotest.(check bool) "dept assembled below filter" true (List.mem [ "dept" ] ps)
    | _ -> Alcotest.fail "expected an assembledness enforcer below the filter"
  end
  | _ -> Alcotest.fail "expected a filter at the root"

let test_assembly_vs_chase_by_cardinality () =
  let query = node (O_select ([ "dept" ], 0.1)) [ extent "emp" ] in
  (* Large extent: batching wins. *)
  let big = optimize query ~required:Path_set.empty in
  let rec algs (p : Oomodel.Oo_model.plan_node) =
    p.alg :: List.concat_map algs p.children
  in
  let has_assembly p = List.exists (function Assembly _ -> true | _ -> false) (algs p) in
  let has_chase p = List.exists (function Pointer_chase _ -> true | _ -> false) (algs p) in
  (match big.plan with
   | Some p -> Alcotest.(check bool) "assembly on a 10k extent" true (has_assembly p)
   | None -> Alcotest.fail "no plan");
  (* Tiny extent: the navigational chase wins. *)
  let small_store =
    List.map (fun c -> if c.cname = "emp" then { c with extent_size = 20. } else c) store
  in
  let small = Oomodel.Oo_model.optimize ~store:small_store query ~required:Path_set.empty in
  match small.plan with
  | Some p -> Alcotest.(check bool) "chase on a 20-object extent" true (has_chase p)
  | None -> Alcotest.fail "no plan"

let test_required_assembledness_at_root () =
  let required = Path_set.of_list [ [ "dept" ]; [ "manager" ] ] in
  let result = optimize (extent "emp") ~required in
  match result.plan with
  | Some p ->
    Alcotest.(check bool) "promised props cover requirement" true
      (phys_covers ~provided:p.props ~required)
  | None -> Alcotest.fail "no plan"

let test_materialize_implementations () =
  let query = node (Materialize [ [ "dept" ] ]) [ extent "emp" ] in
  let result = optimize query ~required:Path_set.empty in
  match result.plan with
  | Some { alg = Assembly ps | Pointer_chase ps; _ } ->
    Alcotest.(check bool) "materializes dept" true (List.mem [ "dept" ] ps)
  | _ -> Alcotest.fail "expected chase or assembly implementing materialize"

let test_materialize_merge_rule () =
  (* MAT(p1, MAT(p2, x)) should collapse into one operator when that is
     cheaper (one assembly setup instead of two). *)
  let query =
    node (Materialize [ [ "dept" ] ]) [ node (Materialize [ [ "manager" ] ]) [ extent "emp" ] ]
  in
  let result = optimize query ~required:Path_set.empty in
  match result.plan with
  | Some { alg = Assembly ps; children = [ { alg = Extent_scan _; _ } ]; _ } ->
    Alcotest.(check int) "both paths in one assembly" 2 (List.length ps)
  | Some p -> Alcotest.fail ("expected one merged assembly, got:\n" ^ Oomodel.Oo_model.explain p)
  | None -> Alcotest.fail "no plan"

let test_filter_pushed_below_materialize () =
  (* Filtering first shrinks the assembly's input: the commute rules
     must let the optimizer reorder select and materialize. *)
  let query =
    node (Materialize [ [ "manager" ] ]) [ node (O_select ([ "dept" ], 0.01)) [ extent "emp" ] ]
  in
  let result = optimize query ~required:Path_set.empty in
  match result.plan with
  | None -> Alcotest.fail "no plan"
  | Some p ->
    (* The manager materialization must sit above the filter (cheaper on
       1% of objects) — i.e. the root materializes and its child
       filters. *)
    let rec top_is_materialize_over_filter (n : Oomodel.Oo_model.plan_node) =
      match n.alg, n.children with
      | (Assembly ps | Pointer_chase ps), [ c ] when List.mem [ "manager" ] ps -> begin
        match c.alg with
        | O_filter _ -> true
        | _ -> false
      end
      | _, [ c ] -> top_is_materialize_over_filter c
      | _, _ -> false
    in
    Alcotest.(check bool)
      ("manager assembled after filtering:\n" ^ Oomodel.Oo_model.explain p)
      true
      (top_is_materialize_over_filter p)

let test_search_stats () =
  let query = node (O_select ([ "dept" ], 0.1)) [ extent "emp" ] in
  let result = optimize query ~required:Path_set.empty in
  Alcotest.(check bool) "enforcer moves used" true (result.stats.enforcer_moves > 0)

let suite =
  [
    Alcotest.test_case "valid_path" `Quick test_valid_path;
    Alcotest.test_case "path-set cover" `Quick test_path_set_covers;
    Alcotest.test_case "extent scan" `Quick test_extent_scan;
    Alcotest.test_case "filter requires assembledness" `Quick test_filter_requires_assembly;
    Alcotest.test_case "assembly vs chase" `Quick test_assembly_vs_chase_by_cardinality;
    Alcotest.test_case "root assembledness requirement" `Quick test_required_assembledness_at_root;
    Alcotest.test_case "materialize implementations" `Quick test_materialize_implementations;
    Alcotest.test_case "materialize merge" `Quick test_materialize_merge_rule;
    Alcotest.test_case "filter pushed below materialize" `Quick test_filter_pushed_below_materialize;
    Alcotest.test_case "search stats" `Quick test_search_stats;
  ]
