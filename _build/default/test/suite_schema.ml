(* Unit tests for Relalg.Schema and Relalg.Tuple. *)

open Relalg

let schema : Schema.t =
  [|
    Schema.attribute "emp.id" Schema.TInt;
    Schema.attribute "emp.name" Schema.TStr;
    Schema.attribute "dept.id" Schema.TInt;
  |]

let test_qualify () =
  Alcotest.(check string) "qualify" "emp.salary" (Schema.qualify "emp" "salary");
  Alcotest.(check string) "base name" "salary" (Schema.base_name "emp.salary");
  Alcotest.(check string) "base of unqualified" "salary" (Schema.base_name "salary")

let test_index_of () =
  Alcotest.(check int) "exact" 0 (Schema.index_of schema "emp.id");
  Alcotest.(check int) "unqualified unique" 1 (Schema.index_of schema "name");
  Alcotest.check_raises "ambiguous unqualified" Not_found (fun () ->
      ignore (Schema.index_of schema "id"));
  Alcotest.check_raises "missing" Not_found (fun () ->
      ignore (Schema.index_of schema "nope"))

let test_resolve () =
  Alcotest.(check string) "resolve unqualified" "emp.name" (Schema.resolve schema "name")

let test_project_and_concat () =
  let p = Schema.project schema [ "dept.id"; "emp.id" ] in
  Alcotest.(check (list string)) "projected order" [ "dept.id"; "emp.id" ] (Schema.names p);
  let c = Schema.concat p [| Schema.attribute "x" Schema.TFloat |] in
  Alcotest.(check int) "concat length" 3 (Array.length c)

let test_row_width () =
  Alcotest.(check int) "width" (8 + 24 + 8) (Schema.row_width schema)

let test_tuple_ops () =
  let t : Tuple.t = [| Value.Int 1; Value.Str "a"; Value.Int 9 |] in
  let p = Tuple.project schema [ "dept.id" ] t in
  Alcotest.(check bool) "project picks value" true (Value.equal p.(0) (Value.Int 9));
  let u : Tuple.t = [| Value.Int 1; Value.Str "a"; Value.Int 9 |] in
  Alcotest.(check bool) "tuple equal" true (Tuple.equal t u);
  Alcotest.(check int) "tuple hash equal" (Tuple.hash t) (Tuple.hash u);
  let v : Tuple.t = [| Value.Int 2; Value.Str "a"; Value.Int 9 |] in
  Alcotest.(check int) "compare by emp.id asc" (-1)
    (Tuple.compare_by schema [ ("emp.id", `Asc) ] t v);
  Alcotest.(check int) "compare by emp.id desc" 1
    (Tuple.compare_by schema [ ("emp.id", `Desc) ] t v)

let suite =
  [
    Alcotest.test_case "qualify/base_name" `Quick test_qualify;
    Alcotest.test_case "index_of" `Quick test_index_of;
    Alcotest.test_case "resolve" `Quick test_resolve;
    Alcotest.test_case "project/concat" `Quick test_project_and_concat;
    Alcotest.test_case "row width" `Quick test_row_width;
    Alcotest.test_case "tuple operations" `Quick test_tuple_ops;
  ]
