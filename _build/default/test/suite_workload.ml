(* Tests of the paper-workload generator. *)

open Relalg

let test_reproducible () =
  let spec = Workload.spec ~n_relations:4 ~seed:9 () in
  let q1 = Workload.generate spec in
  let q2 = Workload.generate spec in
  Alcotest.(check bool) "same logical query" true (Logical.equal q1.logical q2.logical);
  let t1 = Catalog.find q1.catalog "rel0" and t2 = Catalog.find q2.catalog "rel0" in
  Alcotest.(check int) "same data" (Array.length t1.tuples) (Array.length t2.tuples);
  Alcotest.(check bool) "same first tuple" true (Tuple.equal t1.tuples.(0) t2.tuples.(0))

let test_different_seeds_differ () =
  let q1 = Workload.generate (Workload.spec ~n_relations:4 ~seed:9 ()) in
  let q2 = Workload.generate (Workload.spec ~n_relations:4 ~seed:10 ()) in
  Alcotest.(check bool) "different queries" false (Logical.equal q1.logical q2.logical)

let test_paper_parameters () =
  let q = Workload.generate (Workload.spec ~n_relations:5 ~seed:1 ()) in
  Alcotest.(check int) "five relations" 5 (List.length q.relations);
  List.iter
    (fun name ->
      let t = Catalog.find q.catalog name in
      let rows = Array.length t.tuples in
      Alcotest.(check bool)
        (Printf.sprintf "%s has 1200..7200 rows (%d)" name rows)
        true
        (rows >= 1_200 && rows <= 7_200);
      Alcotest.(check int)
        (Printf.sprintf "%s rows are 100 bytes" name)
        100 (Schema.row_width t.schema))
    q.relations

let count_ops pred q =
  let rec go (e : Logical.expr) =
    (if pred e.Logical.op then 1 else 0)
    + List.fold_left (fun acc i -> acc + go i) 0 e.Logical.inputs
  in
  go q

let test_selections_per_relation () =
  (* "as many selections as input relations" (§4.2) *)
  let q = Workload.generate (Workload.spec ~n_relations:6 ~seed:2 ()) in
  let selects =
    count_ops (function Logical.Select _ -> true | _ -> false) q.logical
  in
  Alcotest.(check int) "one selection per relation" 6 selects;
  let joins = count_ops (function Logical.Join _ -> true | _ -> false) q.logical in
  Alcotest.(check int) "n-1 joins" 5 joins

let test_no_initial_cartesian () =
  (* Every join in the generated spine carries at least one predicate. *)
  List.iter
    (fun shape ->
      let q =
        Workload.generate (Workload.spec ~shape ~n_relations:6 ~seed:3 ())
      in
      let rec go (e : Logical.expr) =
        (match e.Logical.op with
         | Logical.Join p ->
           Alcotest.(check bool) "join has a predicate" true (Expr.conjuncts p <> [])
         | _ -> ());
        List.iter go e.Logical.inputs
      in
      go q.logical)
    [ Workload.Chain; Workload.Star; Workload.Random_acyclic ]

let test_batch_seeds_distinct () =
  let qs = Workload.generate_batch (Workload.spec ~n_relations:3 ~seed:4 ()) ~count:5 in
  Alcotest.(check int) "batch size" 5 (List.length qs);
  let distinct =
    List.sort_uniq compare
      (List.map (fun (q : Workload.query) -> Logical.op_name q.logical.Logical.op) qs)
  in
  Alcotest.(check bool) "predicates vary across the batch" true (List.length distinct > 1)

let test_all_shapes_optimizable () =
  List.iter
    (fun shape ->
      let q = Workload.generate (Workload.spec ~shape ~n_relations:5 ~seed:5 ()) in
      let r =
        Relmodel.Optimizer.optimize (Relmodel.Optimizer.request q.catalog) q.logical
          ~required:Phys_prop.any
      in
      Alcotest.(check bool) "plan found" true (r.plan <> None))
    [ Workload.Chain; Workload.Star; Workload.Random_acyclic ]

let suite =
  [
    Alcotest.test_case "reproducible" `Quick test_reproducible;
    Alcotest.test_case "seeds differ" `Quick test_different_seeds_differ;
    Alcotest.test_case "paper parameters" `Quick test_paper_parameters;
    Alcotest.test_case "selections per relation" `Quick test_selections_per_relation;
    Alcotest.test_case "no initial cartesian" `Quick test_no_initial_cartesian;
    Alcotest.test_case "batch variety" `Quick test_batch_seeds_distinct;
    Alcotest.test_case "all shapes optimizable" `Quick test_all_shapes_optimizable;
  ]
