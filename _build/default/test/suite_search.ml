(* Tests of FindBestPlan: optimality against an independent brute-force
   oracle, pruning losslessness, failure caching and limit semantics,
   property-vector consistency of extracted plans. *)

open Relalg

(* ------------------------------------------------------------------ *)
(* An independent plan enumerator for two-relation select-join queries.
   It shares only the cost model with the optimizer, not the search. *)
(* ------------------------------------------------------------------ *)

let enumerate_plans catalog (query : Logical.expr) ~(order : Sort_order.t) :
    Physical.plan list =
  let j_pred, leaves =
    match query with
    | { Logical.op = Logical.Join p; inputs = [ l; r ] } -> (p, [ l; r ])
    | _ -> invalid_arg "enumerate_plans: expected a top-level two-way join"
  in
  let side (leaf : Logical.expr) : Physical.plan list * Schema.t =
    match leaf with
    | { Logical.op = Logical.Get t; inputs = [] } ->
      let schema = (Catalog.find catalog t).Catalog.schema in
      ([ Physical.mk (Physical.Table_scan t) [] ], schema)
    | { Logical.op = Logical.Select p; inputs = [ { Logical.op = Logical.Get t; _ } ] } ->
      let schema = (Catalog.find catalog t).Catalog.schema in
      ( [ Physical.mk (Physical.Filter p) [ Physical.mk (Physical.Table_scan t) [] ] ],
        schema )
    | _ -> invalid_arg "enumerate_plans: leaves must be (selected) gets"
  in
  let l_plans, l_schema = side (List.nth leaves 0) in
  let r_plans, r_schema = side (List.nth leaves 1) in
  let keys = Expr.equijoin_keys j_pred ~left:l_schema ~right:r_schema in
  let swap (a, b) = (b, a) in
  let joins =
    List.concat_map
      (fun l ->
        List.concat_map
          (fun r ->
            let sorted_on cols p = Physical.mk (Physical.Sort (Sort_order.asc cols)) [ p ] in
            let both_orders f = [ f l r keys; f r l (List.map swap keys) ] in
            let nl =
              both_orders (fun a b _ -> Physical.mk (Physical.Nested_loop_join j_pred) [ a; b ])
            in
            let hash =
              if keys = [] then []
              else
                both_orders (fun a b ks -> Physical.mk (Physical.Hash_join (ks, j_pred)) [ a; b ])
            in
            let merge =
              if keys = [] then []
              else
                both_orders (fun a b ks ->
                    Physical.mk
                      (Physical.Merge_join (ks, j_pred))
                      [ sorted_on (List.map fst ks) a; sorted_on (List.map snd ks) b ])
            in
            nl @ hash @ merge)
          r_plans)
      l_plans
  in
  if order = [] then joins
  else begin
    (* Either sort the join result, or use a merge/NL variant that
       already delivers the order (checked by the caller via actual
       output inspection; here we conservatively add sorts on top of
       everything and also keep the bare plans that might deliver). *)
    List.map (fun p -> Physical.mk (Physical.Sort order) [ p ]) joins @ joins
  end

let plan_delivers catalog (order : Sort_order.t) (p : Physical.plan) =
  (* Ground truth by running the plan. *)
  let tuples, schema, _ = Executor.run catalog p in
  (match Schema.index_of schema (fst (List.hd order)) with
   | exception Not_found -> false
   | _ -> Sort_order.is_sorted schema order tuples)

let optimizer_cost catalog query ~required ~pruning =
  let request =
    { (Relmodel.Optimizer.request catalog) with pruning; restore_columns = false }
  in
  let result = Relmodel.Optimizer.optimize request query ~required in
  Option.map
    (fun (p : Relmodel.Optimizer.plan_node) ->
      (Relmodel.Plan_cost.estimate catalog (Relmodel.Optimizer.to_physical p), p))
    result.plan

(* Random two-relation query over a random catalog. *)
let two_rel_case_gen =
  QCheck.Gen.(
    let* rows_r = int_range 40 120
    and* rows_s = int_range 40 120
    and* sel_r = int_range 0 9
    and* with_select = bool
    and* seed = int_range 0 10_000 in
    return (rows_r, rows_s, sel_r, with_select, seed))

let build_two_rel (rows_r, rows_s, sel_r, with_select, seed) =
  let catalog = Catalog.create () in
  let add name rows s =
    ignore
      (Catalog.add_synthetic catalog ~name
         ~columns:[ ("k", Catalog.Uniform_int (0, 9)); ("v", Catalog.Uniform_int (0, 9)) ]
         ~rows ~seed:s ())
  in
  add "r" rows_r seed;
  add "s" rows_s (seed + 1);
  let open Expr in
  let leaf_r =
    if with_select then Logical.select (col "r.v" <=% int sel_r) (Logical.get "r")
    else Logical.get "r"
  in
  let query = Logical.join (col "r.k" =% col "s.k") leaf_r (Logical.get "s") in
  (catalog, query)

let prop_optimal_vs_bruteforce =
  Helpers.qcheck_case ~count:40 "optimizer <= brute force (2 relations)"
    (QCheck.make two_rel_case_gen) (fun case ->
      let catalog, query = build_two_rel case in
      match optimizer_cost catalog query ~required:Phys_prop.any ~pruning:true with
      | None -> false
      | Some (opt_cost, _) ->
        let plans = enumerate_plans catalog query ~order:[] in
        let best_enum =
          List.fold_left
            (fun acc p -> Float.min acc (Cost.total (Relmodel.Plan_cost.estimate catalog p)))
            Float.infinity plans
        in
        Cost.total opt_cost <= best_enum +. 1e-9)

let prop_pruning_lossless =
  Helpers.qcheck_case ~count:30 "pruning on/off find equal optima"
    (QCheck.make two_rel_case_gen) (fun case ->
      let catalog, query = build_two_rel case in
      match
        ( optimizer_cost catalog query ~required:Phys_prop.any ~pruning:true,
          optimizer_cost catalog query ~required:Phys_prop.any ~pruning:false )
      with
      | Some (a, _), Some (b, _) -> Float.abs (Cost.total a -. Cost.total b) < 1e-9
      | _, _ -> false)

let prop_ordered_goal_sound =
  Helpers.qcheck_case ~count:30 "plans for ordered goals deliver the order"
    (QCheck.make two_rel_case_gen) (fun case ->
      let catalog, query = build_two_rel case in
      let order = Sort_order.asc [ "r.k" ] in
      match
        optimizer_cost catalog query ~required:(Phys_prop.sorted order) ~pruning:true
      with
      | None -> false
      | Some (_, plan) ->
        plan_delivers catalog order (Relmodel.Optimizer.to_physical plan))

let prop_ordered_vs_bruteforce =
  Helpers.qcheck_case ~count:25 "ordered goal <= brute force with sorts"
    (QCheck.make two_rel_case_gen) (fun case ->
      let catalog, query = build_two_rel case in
      let order = Sort_order.asc [ "r.k" ] in
      match
        optimizer_cost catalog query ~required:(Phys_prop.sorted order) ~pruning:true
      with
      | None -> false
      | Some (opt_cost, _) ->
        let plans =
          enumerate_plans catalog query ~order
          |> List.filter (plan_delivers catalog order)
        in
        let best_enum =
          List.fold_left
            (fun acc p -> Float.min acc (Cost.total (Relmodel.Plan_cost.estimate catalog p)))
            Float.infinity plans
        in
        Cost.total opt_cost <= best_enum +. 1e-9)

(* ------------------------------------------------------------------ *)
(* Limit and failure-caching semantics                                  *)
(* ------------------------------------------------------------------ *)

let catalog = Helpers.small_catalog ()

let join_query =
  Expr.(Logical.join (col "r.a" =% col "s.a") (Logical.get "r") (Logical.get "s"))

let optimize_with_limit limit =
  let request =
    { (Relmodel.Optimizer.request catalog) with limit; restore_columns = false }
  in
  Relmodel.Optimizer.optimize request join_query ~required:Phys_prop.any

let test_limit_boundary () =
  (* Find the optimum, then verify the limit is honoured both sides of
     the optimal cost. *)
  match (optimize_with_limit None).plan with
  | None -> Alcotest.fail "unlimited optimization failed"
  | Some best ->
    let c = Cost.total best.cost in
    let above = optimize_with_limit (Some (Cost.make ~io:0. ~cpu:(c *. 1.01))) in
    Alcotest.(check bool) "slightly above optimum succeeds" true (above.plan <> None);
    let below = optimize_with_limit (Some (Cost.make ~io:0. ~cpu:(c *. 0.5))) in
    Alcotest.(check bool) "half the optimum fails" true (below.plan = None)

let test_failure_then_success_fresh_optimizer () =
  (* The paper reinitializes partial results per query; a fresh
     optimizer after a failed attempt must still find the plan. *)
  let c =
    match (optimize_with_limit None).plan with
    | Some p -> Cost.total p.cost
    | None -> Alcotest.fail "unlimited optimization failed"
  in
  let failed = optimize_with_limit (Some (Cost.make ~io:0. ~cpu:(c /. 2.))) in
  Alcotest.(check bool) "failed under tight limit" true (failed.plan = None);
  let ok = optimize_with_limit None in
  Alcotest.(check bool) "fresh run succeeds" true (ok.plan <> None)

let test_search_stats_populated () =
  let result =
    Relmodel.Optimizer.optimize (Relmodel.Optimizer.request catalog) join_query
      ~required:Phys_prop.any
  in
  let s = result.stats in
  Alcotest.(check bool) "goals counted" true (s.goals > 0);
  Alcotest.(check bool) "plans costed" true (s.plans_costed > 0);
  Alcotest.(check bool) "rules fired" true (s.rule_firings > 0);
  Alcotest.(check bool) "memo populated" true (result.memo_mexprs >= 4)

let test_plan_props_cover_goal () =
  let required = Phys_prop.with_distinct (Phys_prop.sorted (Sort_order.asc [ "r.a" ])) in
  let q = Logical.project [ "r.a" ] (Logical.get "r") in
  let result =
    Relmodel.Optimizer.optimize (Relmodel.Optimizer.request catalog) q ~required
  in
  match result.plan with
  | None -> Alcotest.fail "no plan"
  | Some p ->
    Alcotest.(check bool) "promised props cover the requirement" true
      (Phys_prop.covers ~provided:p.props ~required)

(* Inverse transformation rules must not loop: optimize a query whose
   exploration round-trips select-merge and pushdown repeatedly. *)
let test_inverse_rules_terminate () =
  let open Expr in
  let q =
    Logical.select
      (col "r.b" >% int 1)
      (Logical.select
         (col "r.a" >% int 2)
         (Logical.join (col "r.a" =% col "s.a")
            (Logical.select (col "r.b" <=% int 4) (Logical.get "r"))
            (Logical.get "s")))
  in
  let result =
    Relmodel.Optimizer.optimize (Relmodel.Optimizer.request catalog) q
      ~required:Phys_prop.any
  in
  Alcotest.(check bool) "terminates with a plan" true (result.plan <> None)

(* The optimizer's incremental accounting must agree exactly with a
   bottom-up re-costing of the extracted plan: cardinality estimation is
   derivation-path-independent, so the memo's frozen group properties
   and the plan's own shape yield the same numbers. *)
let prop_cost_accounting_consistent =
  let gen = QCheck.Gen.(pair (int_range 2 5) (int_range 0 5000)) in
  Helpers.qcheck_case ~count:25 "own cost == neutral re-cost" (QCheck.make gen)
    (fun (n, seed) ->
      let q = Workload.generate (Workload.spec ~n_relations:n ~seed ()) in
      let request =
        { (Relmodel.Optimizer.request q.catalog) with restore_columns = false }
      in
      match (Relmodel.Optimizer.optimize request q.logical ~required:Phys_prop.any).plan with
      | None -> false
      | Some p ->
        let neutral =
          Relmodel.Plan_cost.estimate q.catalog (Relmodel.Optimizer.to_physical p)
        in
        Float.abs (Cost.total p.cost -. Cost.total neutral) < 1e-6 *. Cost.total p.cost +. 1e-9)

let suite =
  [
    prop_optimal_vs_bruteforce;
    prop_cost_accounting_consistent;
    prop_pruning_lossless;
    prop_ordered_goal_sound;
    prop_ordered_vs_bruteforce;
    Alcotest.test_case "cost limit boundary" `Quick test_limit_boundary;
    Alcotest.test_case "failure then fresh success" `Quick test_failure_then_success_fresh_optimizer;
    Alcotest.test_case "search stats populated" `Quick test_search_stats_populated;
    Alcotest.test_case "plan props cover the goal" `Quick test_plan_props_cover_goal;
    Alcotest.test_case "inverse rules terminate" `Quick test_inverse_rules_terminate;
  ]
