(* Unit tests for the search-engine core's small pieces: operator trees,
   rule patterns and bindings, and the effort counters. *)

let node = Volcano.Tree.node

let tree = node "a" [ node "b" [ node "d" [] ]; node "c" [] ]

let test_tree_basics () =
  Alcotest.(check int) "size" 4 (Volcano.Tree.size tree);
  Alcotest.(check string) "op" "a" (Volcano.Tree.op tree);
  Alcotest.(check int) "inputs" 2 (List.length (Volcano.Tree.inputs tree));
  let upper = Volcano.Tree.map String.uppercase_ascii tree in
  Alcotest.(check string) "map" "A" (Volcano.Tree.op upper)

let test_pattern_depth () =
  let open Volcano.Rule in
  Alcotest.(check int) "any" 0 (pattern_depth Any);
  Alcotest.(check int) "node" 1 (pattern_depth (Op ((fun _ -> true), [ Any; Any ])));
  Alcotest.(check int) "nested" 2
    (pattern_depth (Op ((fun _ -> true), [ Op ((fun _ -> true), [ Any ]); Any ])))

let test_binding_helpers () =
  let open Volcano.Rule in
  let b = Node ("j", [ Group 3; Node ("j", [ Group 1; Group 2 ]) ]) in
  Alcotest.(check (list int)) "leaf groups in order" [ 3; 1; 2 ] (leaf_groups b);
  Alcotest.(check (option string)) "root op" (Some "j") (binding_op b);
  Alcotest.(check (option string)) "group has no op" None (binding_op (Group 7))

let test_stats_reset () =
  let s = Volcano.Search_stats.create () in
  s.goals <- 5;
  s.merges <- 2;
  Volcano.Search_stats.reset s;
  Alcotest.(check int) "goals cleared" 0 s.goals;
  Alcotest.(check int) "merges cleared" 0 s.merges

let test_stats_pp () =
  let s = Volcano.Search_stats.create () in
  s.goals <- 1;
  let text = Format.asprintf "%a" Volcano.Search_stats.pp s in
  Alcotest.(check bool) "mentions goals" true
    (String.length text > 0 && String.sub text 0 6 = "goals=")

let suite =
  [
    Alcotest.test_case "tree basics" `Quick test_tree_basics;
    Alcotest.test_case "pattern depth" `Quick test_pattern_depth;
    Alcotest.test_case "binding helpers" `Quick test_binding_helpers;
    Alcotest.test_case "stats reset" `Quick test_stats_reset;
    Alcotest.test_case "stats pp" `Quick test_stats_pp;
  ]
